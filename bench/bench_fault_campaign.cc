/**
 * @file
 * Fault-injection campaign: sweep per-operation fault rates (memory
 * data, LLC data, tag metadata, MTag metadata all at the same rate)
 * and report application output error, fault/repair tallies and the
 * QoR guardrail's effect for three organizations — the conventional
 * baseline, the split Doppelgänger LLC and uniDoppelgänger.
 *
 * Expected shape: the baseline only suffers data flips (its tag
 * metadata is ECC-protected by assumption), so its error grows slowly;
 * the decoupled organizations additionally take metadata flips whose
 * structural damage the self-check repairs at the cost of dropped tags
 * and entries. With the guardrail enabled, approximate fills degrade
 * to the precise path while the error estimate exceeds the budget, so
 * output error stays capped at the same fault rate.
 *
 * Environment knobs (besides common.hh's):
 *   DOPP_FAULT_WORKLOADS  comma-separated workload subset
 *   DOPP_QOR_BUDGET       guardrail error budget (default 0.002)
 */

#include <sstream>

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

namespace
{

FaultConfig
rateConfig(double rate)
{
    FaultConfig f;
    f.memoryRate = rate;
    f.dataRate = rate;
    f.tagMetaRate = rate;
    f.mtagMetaRate = rate;
    return f;
}

std::vector<std::string>
campaignWorkloads()
{
    const char *env = std::getenv("DOPP_FAULT_WORKLOADS");
    if (!env)
        return {"blackscholes", "kmeans", "jpeg"};
    std::vector<std::string> names;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        if (!name.empty())
            names.push_back(name);
    return names;
}

} // namespace

int
main()
{
    const std::vector<std::string> names = campaignWorkloads();
    const double rates[] = {1e-4, 1e-3, 1e-2};
    const LlcKind kinds[] = {LlcKind::Baseline, LlcKind::SplitDopp,
                             LlcKind::UniDopp};
    const char *qorEnv = std::getenv("DOPP_QOR_BUDGET");
    const double budget = qorEnv ? std::atof(qorEnv) : 0.002;

    TextTable err;
    err.header({"benchmark", "organization", "err @1e-4", "err @1e-3",
                "err @1e-2"});
    TextTable rep;
    rep.header({"benchmark", "organization", "injected", "detected",
                "repaired", "tags dropped", "entries dropped"});
    TextTable guard;
    guard.header({"benchmark", "organization", "err off", "err on",
                  "budget", "degradations", "degraded fills"});

    for (const auto &name : names) {
        RunConfig base = defaultConfig();
        base.kind = LlcKind::Baseline;
        const RunResult precise = runWithProgress(name, base);

        for (LlcKind kind : kinds) {
            RunConfig cfg = defaultConfig();
            cfg.kind = kind;

            std::vector<std::string> erow = {name, llcKindName(kind)};
            RunResult top; // highest-rate run, for the repair table
            for (double rate : rates) {
                cfg.fault = rateConfig(rate);
                RunResult r = runWithProgress(name, cfg);
                erow.push_back(pct(workloadOutputError(
                    name, r.output, precise.output)));
                top = std::move(r);
            }
            err.row(std::move(erow));
            rep.row({name, llcKindName(kind),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.totalInjected())),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.detected)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.repairs)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.tagsDropped)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.entriesDropped))});

            // Guardrail study at the highest rate (the baseline has no
            // approximate fill path to degrade, so skip it).
            if (kind == LlcKind::Baseline)
                continue;
            cfg.fault = rateConfig(rates[2]);
            cfg.qor.budget = budget;
            const RunResult on = runWithProgress(name, cfg);
            guard.row({name, llcKindName(kind),
                       pct(workloadOutputError(name, top.output,
                                               precise.output)),
                       pct(workloadOutputError(name, on.output,
                                               precise.output)),
                       pct(budget),
                       strfmt("%llu",
                              static_cast<unsigned long long>(
                                  on.guardrailDegradations)),
                       strfmt("%llu",
                              static_cast<unsigned long long>(
                                  on.llc.degradedFills))});
        }
    }

    err.print("Fault campaign: output error vs per-op fault rate");
    rep.print("Fault campaign: injector/repair tallies @1e-2");
    guard.print("QoR guardrail @1e-2: error with guardrail off vs on");
    std::printf("(same seed + config => identical fault trace and "
                "results; see DESIGN.md fault model)\n");
    return 0;
}
