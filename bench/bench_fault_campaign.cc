/**
 * @file
 * Fault-injection campaign: sweep per-operation fault rates (memory
 * data, LLC data, tag metadata, MTag metadata all at the same rate)
 * and report application output error, fault/repair tallies and the
 * QoR guardrail's effect for three organizations — the conventional
 * baseline, the split Doppelgänger LLC and uniDoppelgänger.
 *
 * Expected shape: the baseline only suffers data flips (its tag
 * metadata is ECC-protected by assumption), so its error grows slowly;
 * the decoupled organizations additionally take metadata flips whose
 * structural damage the self-check repairs at the cost of dropped tags
 * and entries. With the guardrail enabled, approximate fills degrade
 * to the precise path while the error estimate exceeds the budget, so
 * output error stays capped at the same fault rate.
 *
 * Environment knobs (besides common.hh's):
 *   DOPP_FAULT_WORKLOADS  comma-separated workload subset
 *   DOPP_QOR_BUDGET       guardrail error budget (default 0.002)
 */

#include <array>
#include <cstdlib>
#include <sstream>

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

namespace
{

FaultConfig
rateConfig(double rate)
{
    FaultConfig f;
    f.memoryRate = rate;
    f.dataRate = rate;
    f.tagMetaRate = rate;
    f.mtagMetaRate = rate;
    return f;
}

std::vector<std::string>
campaignWorkloads()
{
    const char *env = std::getenv("DOPP_FAULT_WORKLOADS");
    if (!env)
        return {"blackscholes", "kmeans", "jpeg"};
    std::vector<std::string> names;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ','))
        if (!name.empty())
            names.push_back(name);
    return names;
}

/** Batch indices of one workload × organization cell. */
struct CellIndex
{
    size_t rates[3];              ///< the three rate-sweep runs
    size_t guard = SIZE_MAX;      ///< guardrail run (non-baseline only)
};

} // namespace

int
main()
{
    const std::vector<std::string> names = campaignWorkloads();
    const double rates[] = {1e-4, 1e-3, 1e-2};
    const LlcKind kinds[] = {LlcKind::Baseline, LlcKind::SplitDopp,
                             LlcKind::UniDopp};
    const double budget = envDouble("DOPP_QOR_BUDGET", 0.002);

    // One batch for the whole campaign: per workload, the precise
    // reference plus every organization × rate cell.
    std::vector<RunConfig> configs;
    std::vector<size_t> preciseIdx(names.size());
    std::vector<std::array<CellIndex, 3>> cells(names.size());
    for (size_t w = 0; w < names.size(); ++w) {
        RunConfig base = defaultConfig(names[w]);
        base.kind = LlcKind::Baseline;
        preciseIdx[w] = configs.size();
        configs.push_back(std::move(base));

        for (size_t k = 0; k < 3; ++k) {
            for (size_t i = 0; i < 3; ++i) {
                RunConfig cfg = defaultConfig(names[w]);
                cfg.kind = kinds[k];
                cfg.fault = rateConfig(rates[i]);
                cells[w][k].rates[i] = configs.size();
                configs.push_back(std::move(cfg));
            }
            // Guardrail study at the highest rate (the baseline has no
            // approximate fill path to degrade, so skip it).
            if (kinds[k] == LlcKind::Baseline)
                continue;
            RunConfig cfg = defaultConfig(names[w]);
            cfg.kind = kinds[k];
            cfg.fault = rateConfig(rates[2]);
            cfg.qor.budget = budget;
            cells[w][k].guard = configs.size();
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable err;
    err.header({"benchmark", "organization", "err @1e-4", "err @1e-3",
                "err @1e-2"});
    TextTable rep;
    rep.header({"benchmark", "organization", "injected", "detected",
                "repaired", "tags dropped", "entries dropped"});
    TextTable guard;
    guard.header({"benchmark", "organization", "err off", "err on",
                  "budget", "degradations", "degraded fills"});

    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const RunResult &precise = results[preciseIdx[w]];

        for (size_t k = 0; k < 3; ++k) {
            const CellIndex &cell = cells[w][k];
            std::vector<std::string> erow = {name,
                                             llcKindName(kinds[k])};
            for (size_t i = 0; i < 3; ++i) {
                const RunResult &r = results[cell.rates[i]];
                erow.push_back(pct(workloadOutputError(
                    name, r.output, precise.output)));
            }
            err.row(std::move(erow));

            const RunResult &top = results[cell.rates[2]];
            rep.row({name, llcKindName(kinds[k]),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.totalInjected())),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.detected)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.repairs)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.tagsDropped)),
                     strfmt("%llu", static_cast<unsigned long long>(
                                        top.fault.entriesDropped))});

            if (cell.guard == SIZE_MAX)
                continue;
            const RunResult &on = results[cell.guard];
            guard.row({name, llcKindName(kinds[k]),
                       pct(workloadOutputError(name, top.output,
                                               precise.output)),
                       pct(workloadOutputError(name, on.output,
                                               precise.output)),
                       pct(budget),
                       strfmt("%llu",
                              static_cast<unsigned long long>(
                                  on.guardrailDegradations)),
                       strfmt("%llu",
                              static_cast<unsigned long long>(
                                  on.llc.degradedFills))});
        }
    }

    err.print("Fault campaign: output error vs per-op fault rate");
    rep.print("Fault campaign: injector/repair tallies @1e-2");
    guard.print("QoR guardrail @1e-2: error with guardrail off vs on");
    std::printf("(same seed + config => identical fault trace and "
                "results; see DESIGN.md fault model)\n");
    return 0;
}
