/**
 * @file
 * Fig 11: LLC dynamic (a) and leakage (b) energy *reduction* of the
 * split Doppelgänger organization relative to the 2 MB baseline, as
 * the approximate data array varies over 1/2, 1/4, 1/8.
 *
 * Accounting (Sec 5.3, 5.6): per-structure access counts × CactiLite
 * per-access energies, + 168 pJ per map generation; leakage = leakage
 * power × runtime, both halves of the split LLC included.
 * Paper averages at 1/4: 2.55× dynamic, 1.41× leakage.
 */

#include "energy/energy_model.hh"

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.5, 0.25, 0.125};
    const EnergyModel energy;
    const auto &names = workloadNames();

    const size_t stride = 1 + 3;
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (double fraction : fractions) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::SplitDopp;
            cfg.dataFraction = fraction;
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable dyn;
    dyn.header({"benchmark", "dynamic @1/2", "dynamic @1/4",
                "dynamic @1/8"});
    TextTable leak;
    leak.header({"benchmark", "leakage @1/2", "leakage @1/4",
                 "leakage @1/8"});

    double dynSum[3] = {};
    double leakSum[3] = {};
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        // Access counts come from the run's registry snapshot by
        // structure name; the same counters the CSV/JSON exports see.
        const EnergyResult baseE = energy.baseline(baseline.stats, "llc");

        std::vector<std::string> drow = {names[w]};
        std::vector<std::string> lrow = {names[w]};
        for (size_t i = 0; i < 3; ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            const EnergyResult e = energy.split(
                r.stats, "llc.precise", "llc.dopp", r.doppConfig);
            const double dynRed = baseE.dynamicPj / e.dynamicPj;
            const double leakRed = baseE.leakagePj / e.leakagePj;
            drow.push_back(times(dynRed));
            lrow.push_back(times(leakRed));
            dynSum[i] += dynRed;
            leakSum[i] += leakRed;
        }
        dyn.row(std::move(drow));
        leak.row(std::move(lrow));
    }

    const double n = static_cast<double>(names.size());
    dyn.row({"average", times(dynSum[0] / n), times(dynSum[1] / n),
             times(dynSum[2] / n)});
    leak.row({"average", times(leakSum[0] / n), times(leakSum[1] / n),
              times(leakSum[2] / n)});

    dyn.print("Fig 11a: LLC dynamic energy reduction vs baseline");
    leak.print("Fig 11b: LLC leakage energy reduction vs baseline");
    std::printf("(paper averages at 1/4: 2.55x dynamic, 1.41x leakage; "
                "canneal the only dynamic-energy outlier)\n");
    return 0;
}
