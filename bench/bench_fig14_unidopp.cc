/**
 * @file
 * Fig 14: uniDoppelgänger error (a), normalized runtime (b) and LLC
 * dynamic energy reduction (c) with 3/4, 1/2 and 1/4 data arrays
 * (fractions of the 32 K-entry tag array ≙ the 2 MB baseline).
 *
 * Paper: comparable error/runtime to the split design; at 1/4 (512 KB
 * data) 2.45× dynamic and 2.60× leakage energy reductions.
 */

#include "energy/energy_model.hh"

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.75, 0.5, 0.25};
    const EnergyModel energy;
    const auto &names = workloadNames();

    const size_t stride = 1 + 3;
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (double fraction : fractions) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::UniDopp;
            cfg.dataFraction = fraction;
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable err;
    err.header({"benchmark", "error @3/4", "error @1/2", "error @1/4"});
    TextTable rt;
    rt.header({"benchmark", "runtime @3/4", "runtime @1/2",
               "runtime @1/4"});
    TextTable dyn;
    dyn.header({"benchmark", "dynamic @3/4", "dynamic @1/2",
                "dynamic @1/4"});

    double rtSum[3] = {};
    double dynSum[3] = {};
    double leakSum[3] = {};
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        const EnergyResult baseE =
            energy.baseline(baseline.llc, baseline.runtime);

        std::vector<std::string> erow = {names[w]};
        std::vector<std::string> rrow = {names[w]};
        std::vector<std::string> drow = {names[w]};
        for (size_t i = 0; i < 3; ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            const EnergyResult e =
                energy.unified(r.llc, r.doppConfig, r.runtime);
            const double error = workloadOutputError(
                names[w], r.output, baseline.output);
            const double norm = static_cast<double>(r.runtime) /
                static_cast<double>(baseline.runtime);
            erow.push_back(pct(error));
            rrow.push_back(strfmt("%.3f", norm));
            drow.push_back(times(baseE.dynamicPj / e.dynamicPj));
            rtSum[i] += norm;
            dynSum[i] += baseE.dynamicPj / e.dynamicPj;
            leakSum[i] += baseE.leakagePj / e.leakagePj;
        }
        err.row(std::move(erow));
        rt.row(std::move(rrow));
        dyn.row(std::move(drow));
    }

    const double n = static_cast<double>(names.size());
    rt.row({"average", strfmt("%.3f", rtSum[0] / n),
            strfmt("%.3f", rtSum[1] / n), strfmt("%.3f", rtSum[2] / n)});
    dyn.row({"average", times(dynSum[0] / n), times(dynSum[1] / n),
             times(dynSum[2] / n)});

    err.print("Fig 14a: uniDoppelganger output error");
    rt.print("Fig 14b: uniDoppelganger normalized runtime");
    dyn.print("Fig 14c: uniDoppelganger LLC dynamic energy reduction");
    std::printf("average leakage reductions: %s @3/4, %s @1/2, %s @1/4 "
                "(paper @1/4: 2.45x dynamic, 2.60x leakage)\n",
                times(leakSum[0] / n).c_str(),
                times(leakSum[1] / n).c_str(),
                times(leakSum[2] / n).c_str());
    return 0;
}
