/**
 * @file
 * Simulator-throughput harness seeding the repository's benchmark
 * trajectory. Two sections:
 *
 *  1. *Map kernels*: maps/sec per element type for the monomorphized
 *     kernel path (computeMapComponents) and the generic per-element
 *     reference path (computeMapComponentsGeneric), plus the speedup
 *     ratio between them.
 *  2. *LLC organizations*: accesses/sec and maps/sec for every
 *     registered organization, driven by a synthetic fetch/writeback
 *     stream over an annotated F32 region.
 *  3. *Memory tier*: raw MainMemory accesses/sec for the legacy flat
 *     model vs tiered configurations (per-partition routing, fault
 *     draws, write buffer), guarding the tier against hot-path
 *     regressions. Throughput numbers are report-only.
 *
 * Results print as text tables and are written to BENCH_perf.json
 * (schema "dopp-bench-perf-v2") via the crash-safe atomicWriteFile.
 * Each organization row carries a per-phase hot-path breakdown
 * (tag probe / MTag probe / list maintenance / data array, in ns)
 * from a second instrumented pass with a HotPathProfile attached;
 * the throughput numbers come from the uninstrumented first pass.
 *
 * Usage: bench_perf [--smoke] [--out PATH]
 *   --smoke (or DOPP_PERF_SMOKE=1)  tiny iteration counts for CI;
 *                                   numbers are meaningless, but the
 *                                   JSON schema is fully exercised
 *   --out PATH (or DOPP_PERF_OUT)   output path (default
 *                                   BENCH_perf.json)
 */

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "core/map_function.hh"
#include "harness/experiment.hh"
#include "harness/llc_factory.hh"
#include "harness/report.hh"
#include "util/env.hh"
#include "util/fileio.hh"
#include "util/random.hh"

using namespace dopp;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Pool of random blocks so the timed loop sees varied data instead
 * of one cache-resident pattern. */
std::vector<BlockData>
randomBlocks(size_t count, u32 seed)
{
    Rng rng(seed);
    std::vector<BlockData> pool(count);
    for (auto &block : pool)
        for (auto &byte : block)
            byte = static_cast<u8>(rng.below(256));
    return pool;
}

struct KernelResult
{
    ElemType type;
    double kernelMapsPerSec;
    double genericMapsPerSec;
};

/** Time @p maps map generations over @p pool through @p fn. */
template <typename Fn>
double
timeMaps(const std::vector<BlockData> &pool, const MapParams &params,
         u64 maps, Fn fn)
{
    u64 sink = 0;
    size_t i = 0;
    const auto start = Clock::now();
    for (u64 n = 0; n < maps; ++n) {
        sink += fn(pool[i].data(), params);
        if (++i == pool.size())
            i = 0;
    }
    const double elapsed = secondsSince(start);
    // The sink keeps the loop observable without volatile tricks.
    if (sink == 0x6e6f6e7a65726f)
        std::fprintf(stderr, "sink\n");
    return static_cast<double>(maps) / std::max(elapsed, 1e-9);
}

KernelResult
benchKernel(ElemType type, u64 maps)
{
    MapParams params;
    params.mapBits = 14;
    params.type = type;
    params.minValue = 0.0;
    params.maxValue = 255.0;
    const auto pool = randomBlocks(256, 0xD0BB + static_cast<u32>(type));

    KernelResult r;
    r.type = type;
    r.kernelMapsPerSec = timeMaps(
        pool, params, maps, [](const u8 *b, const MapParams &p) {
            return computeMapComponents(b, p).combined;
        });
    r.genericMapsPerSec = timeMaps(
        pool, params, maps, [](const u8 *b, const MapParams &p) {
            return computeMapComponentsGeneric(b, p).combined;
        });
    return r;
}

struct OrgResult
{
    std::string name;
    double accessesPerSec;
    double mapsPerSec;

    /** Per-phase hot-path breakdown from a second, instrumented pass
     * (sim/llc.hh HotPathProfile); the throughput numbers above come
     * from the uninstrumented pass and pay none of this timing. */
    u64 tagProbeNs = 0;
    u64 mtagProbeNs = 0;
    u64 listMaintNs = 0;
    u64 dataArrayNs = 0;
};

/**
 * Drive one organization with a deterministic fetch/writeback mix
 * over an annotated F32 region (every 4th access is a writeback of
 * fresh values, forcing map regeneration on the Doppelgänger paths).
 */
OrgResult
benchOrg(const std::string &name, u64 accesses)
{
    MainMemory mem;
    ApproxRegistry registry;

    const u64 footprintBlocks = 8192;
    ApproxRegion region;
    region.base = 0;
    region.size = footprintBlocks * blockBytes;
    region.type = ElemType::F32;
    region.minValue = 0.0;
    region.maxValue = 1.0;
    region.name = "perf";
    registry.add(region);

    // Seed memory with in-range values so maps are realistic.
    Rng rng(0xBEEF);
    BlockData block;
    for (u64 b = 0; b < footprintBlocks; ++b) {
        for (unsigned e = 0; e < elemsPerBlock(ElemType::F32); ++e) {
            setBlockElement(block.data(), ElemType::F32, e,
                            rng.below(1000) / 1000.0);
        }
        mem.writeBlock(b * blockBytes, block.data());
    }

    RunConfig cfg;
    cfg.workloadName = "perf-synthetic";
    StatRegistry stats;
    LlcBuilt built = buildLlc(name, mem, registry, cfg, stats);

    BlockData buf;
    const auto start = Clock::now();
    for (u64 n = 0; n < accesses; ++n) {
        const Addr addr = (rng.below(footprintBlocks)) * blockBytes;
        if (n % 4 == 3) {
            setBlockElement(buf.data(), ElemType::F32,
                            static_cast<unsigned>(n % 16),
                            rng.below(1000) / 1000.0);
            built.llc->writeback(addr, buf.data());
        } else {
            built.llc->fetch(addr, buf.data());
        }
    }
    const double elapsed = std::max(secondsSince(start), 1e-9);

    OrgResult r;
    r.name = name;
    r.accessesPerSec = static_cast<double>(accesses) / elapsed;
    r.mapsPerSec =
        static_cast<double>(built.llc->stats().mapGens) / elapsed;

    // Second, instrumented pass: attach a HotPathProfile and replay a
    // quarter of the stream so the report can break the access cost
    // into tag probe / MTag probe / list maintenance / data array.
    HotPathProfile profile;
    built.llc->setHotPathProfile(&profile);
    for (u64 n = 0; n < accesses / 4; ++n) {
        const Addr addr = (rng.below(footprintBlocks)) * blockBytes;
        if (n % 4 == 3) {
            setBlockElement(buf.data(), ElemType::F32,
                            static_cast<unsigned>(n % 16),
                            rng.below(1000) / 1000.0);
            built.llc->writeback(addr, buf.data());
        } else {
            built.llc->fetch(addr, buf.data());
        }
    }
    built.llc->setHotPathProfile(nullptr);
    r.tagProbeNs = profile.tagProbeNs;
    r.mtagProbeNs = profile.mtagProbeNs;
    r.listMaintNs = profile.listMaintNs;
    r.dataArrayNs = profile.dataArrayNs;
    return r;
}

struct MemResult
{
    std::string name;
    double accessesPerSec;
};

/**
 * Drive MainMemory directly with a 3:1 read/write block mix over a
 * region routed per @p tier (annotated pages approximate when the
 * tier has approximate partitions).
 */
MemResult
benchMemTier(const std::string &label, const MemTierConfig &tier,
             u64 accesses)
{
    MainMemory mem = tier.enabled() ? MainMemory(tier) : MainMemory();
    FaultConfig fc;
    FaultInjector fi(fc);
    if (tier.enabled()) {
        mem.setFaultInjector(&fi);
        mem.routeApprox(0, 4096 * blockBytes);
    }

    Rng rng(0xF00D);
    BlockData buf = {};
    const auto start = Clock::now();
    for (u64 n = 0; n < accesses; ++n) {
        const Addr addr = rng.below(8192) * blockBytes;
        if (n % 4 == 3)
            mem.writeBlock(addr, buf.data());
        else
            mem.readBlock(addr, buf.data());
    }
    const double elapsed = std::max(secondsSince(start), 1e-9);

    MemResult r;
    r.name = label;
    r.accessesPerSec = static_cast<double>(accesses) / elapsed;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = envFlag("DOPP_PERF_SMOKE", false);
    const char *envOut = std::getenv("DOPP_PERF_OUT");
    std::string outPath =
        envOut && *envOut ? envOut : "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            outPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out PATH]\n", argv[0]);
            return 2;
        }
    }

    const u64 kernelMaps = smoke ? 20000 : 2000000;
    const u64 orgAccesses = smoke ? 10000 : 400000;
    const u64 memAccesses = smoke ? 20000 : 2000000;

    const ElemType types[] = {ElemType::U8, ElemType::I16,
                              ElemType::I32, ElemType::F32,
                              ElemType::F64};
    std::vector<KernelResult> kernels;
    for (ElemType t : types)
        kernels.push_back(benchKernel(t, kernelMaps));

    registerBuiltinLlcs();
    std::vector<OrgResult> orgs;
    for (const std::string &name : registeredLlcNames())
        orgs.push_back(benchOrg(name, orgAccesses));

    std::vector<MemResult> mems;
    mems.push_back(
        benchMemTier("flat-dram", MemTierConfig{}, memAccesses));
    mems.push_back(benchMemTier("tiered-faultless",
                                defaultMemTier(0.0, 0.0),
                                memAccesses));
    mems.push_back(benchMemTier("tiered-faulty",
                                defaultMemTier(1e-4, 1e-4),
                                memAccesses));

    TextTable kt;
    kt.header({"type", "kernel maps/s", "generic maps/s", "speedup"});
    for (const KernelResult &k : kernels) {
        kt.row({elemTypeName(k.type),
                strfmt("%.3g", k.kernelMapsPerSec),
                strfmt("%.3g", k.genericMapsPerSec),
                times(k.kernelMapsPerSec /
                      std::max(k.genericMapsPerSec, 1e-9))});
    }
    kt.print("Map-kernel throughput");

    TextTable ot;
    ot.header({"organization", "accesses/s", "maps/s", "tagProbe ns",
               "mtagProbe ns", "listMaint ns", "dataArray ns"});
    for (const OrgResult &o : orgs) {
        ot.row({o.name, strfmt("%.3g", o.accessesPerSec),
                strfmt("%.3g", o.mapsPerSec),
                strfmt("%llu",
                       static_cast<unsigned long long>(o.tagProbeNs)),
                strfmt("%llu",
                       static_cast<unsigned long long>(o.mtagProbeNs)),
                strfmt("%llu",
                       static_cast<unsigned long long>(o.listMaintNs)),
                strfmt("%llu",
                       static_cast<unsigned long long>(
                           o.dataArrayNs))});
    }
    ot.print("LLC organization throughput (phase ns: instrumented "
             "pass, report-only)");

    TextTable mt;
    mt.header({"config", "accesses/s"});
    for (const MemResult &m : mems)
        mt.row({m.name, strfmt("%.3g", m.accessesPerSec)});
    mt.print("Memory-tier throughput");

    std::string json = "{\n  \"schema\": \"dopp-bench-perf-v2\",\n";
    json += strfmt("  \"smoke\": %s,\n", smoke ? "true" : "false");
    json += strfmt("  \"kernelMaps\": %llu,\n",
                   static_cast<unsigned long long>(kernelMaps));
    json += strfmt("  \"orgAccesses\": %llu,\n",
                   static_cast<unsigned long long>(orgAccesses));
    json += strfmt("  \"memAccesses\": %llu,\n",
                   static_cast<unsigned long long>(memAccesses));
    json += "  \"mapKernels\": [\n";
    for (size_t i = 0; i < kernels.size(); ++i) {
        const KernelResult &k = kernels[i];
        json += strfmt(
            "    {\"type\": \"%s\", \"kernelMapsPerSec\": %.6g, "
            "\"genericMapsPerSec\": %.6g, \"speedup\": %.4g}%s\n",
            elemTypeName(k.type), k.kernelMapsPerSec,
            k.genericMapsPerSec,
            k.kernelMapsPerSec / std::max(k.genericMapsPerSec, 1e-9),
            i + 1 < kernels.size() ? "," : "");
    }
    json += "  ],\n  \"organizations\": [\n";
    for (size_t i = 0; i < orgs.size(); ++i) {
        const OrgResult &o = orgs[i];
        json += strfmt(
            "    {\"organization\": \"%s\", \"accessesPerSec\": %.6g, "
            "\"mapsPerSec\": %.6g, \"tagProbeNs\": %llu, "
            "\"mtagProbeNs\": %llu, \"listMaintNs\": %llu, "
            "\"dataArrayNs\": %llu}%s\n",
            o.name.c_str(), o.accessesPerSec, o.mapsPerSec,
            static_cast<unsigned long long>(o.tagProbeNs),
            static_cast<unsigned long long>(o.mtagProbeNs),
            static_cast<unsigned long long>(o.listMaintNs),
            static_cast<unsigned long long>(o.dataArrayNs),
            i + 1 < orgs.size() ? "," : "");
    }
    json += "  ],\n  \"memoryTier\": [\n";
    for (size_t i = 0; i < mems.size(); ++i) {
        const MemResult &m = mems[i];
        json += strfmt(
            "    {\"config\": \"%s\", \"accessesPerSec\": %.6g}%s\n",
            m.name.c_str(), m.accessesPerSec,
            i + 1 < mems.size() ? "," : "");
    }
    json += "  ]\n}\n";

    atomicWriteFile(outPath, json);
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
