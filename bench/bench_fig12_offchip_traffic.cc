/**
 * @file
 * Fig 12: off-chip memory traffic of the split Doppelgänger LLC,
 * normalized to the 2 MB baseline, for 1/2, 1/4 and 1/8 data arrays.
 *
 * Paper shape: minimal impact — +1.1% (1/2) and +3.4% (1/4) on
 * average.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.5, 0.25, 0.125};
    const auto &names = workloadNames();

    const size_t stride = 1 + 3;
    std::vector<RunConfig> configs;
    for (const auto &name : names) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (double fraction : fractions) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::SplitDopp;
            cfg.dataFraction = fraction;
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable table;
    table.header({"benchmark", "traffic @1/2", "traffic @1/4",
                  "traffic @1/8"});

    double sums[3] = {};
    for (size_t w = 0; w < names.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        std::vector<std::string> row = {names[w]};
        for (size_t i = 0; i < 3; ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            const double norm =
                static_cast<double>(r.offChipTraffic()) /
                static_cast<double>(
                    std::max<u64>(baseline.offChipTraffic(), 1));
            row.push_back(strfmt("%.3f", norm));
            sums[i] += norm;
        }
        table.row(std::move(row));
    }

    const double n = static_cast<double>(names.size());
    table.row({"average", strfmt("%.3f", sums[0] / n),
               strfmt("%.3f", sums[1] / n), strfmt("%.3f", sums[2] / n)});
    table.print("Fig 12: off-chip memory traffic normalized to "
                "baseline");
    std::printf("(paper averages: 1.011 @1/2, 1.034 @1/4)\n");
    return 0;
}
