/**
 * @file
 * Fig 12: off-chip memory traffic of the split Doppelgänger LLC,
 * normalized to the 2 MB baseline, for 1/2, 1/4 and 1/8 data arrays.
 *
 * Paper shape: minimal impact — +1.1% (1/2) and +3.4% (1/4) on
 * average.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const double fractions[] = {0.5, 0.25, 0.125};

    TextTable table;
    table.header({"benchmark", "traffic @1/2", "traffic @1/4",
                  "traffic @1/8"});

    double sums[3] = {};
    for (const auto &name : workloadNames()) {
        RunConfig base = defaultConfig();
        base.kind = LlcKind::Baseline;
        const RunResult baseline = runWithProgress(name, base);

        std::vector<std::string> row = {name};
        for (int i = 0; i < 3; ++i) {
            RunConfig cfg = defaultConfig();
            cfg.kind = LlcKind::SplitDopp;
            cfg.dataFraction = fractions[i];
            const RunResult r = runWithProgress(name, cfg);
            const double norm =
                static_cast<double>(r.offChipTraffic()) /
                static_cast<double>(
                    std::max<u64>(baseline.offChipTraffic(), 1));
            row.push_back(strfmt("%.3f", norm));
            sums[i] += norm;
        }
        table.row(std::move(row));
    }

    const double n = static_cast<double>(workloadNames().size());
    table.row({"average", strfmt("%.3f", sums[0] / n),
               strfmt("%.3f", sums[1] / n), strfmt("%.3f", sums[2] / n)});
    table.print("Fig 12: off-chip memory traffic normalized to "
                "baseline");
    std::printf("(paper averages: 1.011 @1/2, 1.034 @1/4)\n");
    return 0;
}
