/**
 * @file
 * Fig 2: approximate-data storage savings as the element-wise
 * similarity threshold T is relaxed (0%, 0.01%, 0.1%, 1%, 10%).
 *
 * Methodology (paper Sec 2): snapshot the baseline 2 MB LLC
 * periodically during execution; two approximate blocks are similar if
 * every element pair differs by ≤ T × declared range; savings is the
 * fraction of approximate blocks removable when similar blocks share
 * one data entry, averaged over snapshots.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    const std::vector<std::pair<std::string, double>> thresholds = {
        {"0%", 0.0},     {"0.01%", 0.0001}, {"0.1%", 0.001},
        {"1%", 0.01},    {"10%", 0.10},
    };
    const auto &names = workloadNames();
    const size_t cap = snapshotCap();

    std::vector<std::vector<SnapshotAverager>> avg(
        names.size(), std::vector<SnapshotAverager>(thresholds.size()));
    std::vector<RunConfig> configs;
    for (size_t w = 0; w < names.size(); ++w) {
        RunConfig cfg = defaultConfig(names[w]);
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        auto *a = &avg[w];
        cfg.onSnapshot = [a, cap, &thresholds](const Snapshot &snap) {
            const Snapshot thin = thinSnapshot(snap, cap);
            for (size_t i = 0; i < thresholds.size(); ++i)
                (*a)[i].sample(thresholdSavings(thin,
                                                thresholds[i].second));
        };
        configs.push_back(std::move(cfg));
    }
    runCampaign(configs);

    TextTable table;
    {
        std::vector<std::string> head = {"benchmark"};
        for (const auto &[label, t] : thresholds)
            head.push_back("T=" + label);
        table.header(std::move(head));
    }

    std::vector<double> sums(thresholds.size(), 0.0);
    for (size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (size_t i = 0; i < thresholds.size(); ++i) {
            row.push_back(pct(avg[w][i].mean()));
            sums[i] += avg[w][i].mean();
        }
        table.row(std::move(row));
    }

    std::vector<std::string> mean = {"average"};
    for (double s : sums)
        mean.push_back(pct(s / static_cast<double>(names.size())));
    table.row(std::move(mean));

    table.print("Fig 2: approx data storage savings vs similarity "
                "threshold T");
    std::printf("(paper: near-zero at T=0%% except blackscholes/"
                "swaptions; rising with T)\n");
    return 0;
}
