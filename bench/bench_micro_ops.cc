/**
 * @file
 * Micro-operation benchmarks (google-benchmark): map generation
 * throughput for each element type, Doppelgänger hit/miss/writeback
 * paths against the conventional cache's, B∆I compression and
 * decompression, and the full 4-core hierarchy access path.
 */

#include <benchmark/benchmark.h>

#include "compress/bdi.hh"
#include "core/doppelganger_cache.hh"
#include "core/split_llc.hh"
#include "sim/hierarchy.hh"
#include "util/random.hh"

using namespace dopp;

namespace
{

BlockData
randomBlock(Rng &rng)
{
    BlockData b;
    for (auto &byte : b)
        byte = static_cast<u8>(rng.below(256));
    return b;
}

void
BM_MapGeneration(benchmark::State &state)
{
    const ElemType type = static_cast<ElemType>(state.range(0));
    Rng rng(42);
    BlockData block = randomBlock(rng);
    MapParams params;
    params.mapBits = 14;
    params.type = type;
    params.minValue = 0.0;
    params.maxValue = 255.0;

    for (auto _ : state) {
        benchmark::DoNotOptimize(computeMap(block.data(), params));
        block[0] = static_cast<u8>(block[0] + 1);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_MapGenerationGeneric(benchmark::State &state)
{
    // Reference per-element blockElement() path; the ratio of
    // BM_MapGeneration to this is the monomorphized-kernel speedup.
    const ElemType type = static_cast<ElemType>(state.range(0));
    Rng rng(42);
    BlockData block = randomBlock(rng);
    MapParams params;
    params.mapBits = 14;
    params.type = type;
    params.minValue = 0.0;
    params.maxValue = 255.0;

    for (auto _ : state) {
        benchmark::DoNotOptimize(
            computeMapComponentsGeneric(block.data(), params).combined);
        block[0] = static_cast<u8>(block[0] + 1);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_BdiCompress(benchmark::State &state)
{
    Rng rng(42);
    // A compressible block: small deltas from one base.
    BlockData block = {};
    for (unsigned i = 0; i < blockBytes; i += 4) {
        const i32 v = 1000000 + static_cast<i32>(rng.below(100));
        std::memcpy(block.data() + i, &v, 4);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(bdiCompressedSize(block.data()));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_BdiRoundTrip(benchmark::State &state)
{
    Rng rng(42);
    BlockData block = {};
    for (unsigned i = 0; i < blockBytes; i += 4) {
        const i32 v = 1000000 + static_cast<i32>(rng.below(100));
        std::memcpy(block.data() + i, &v, 4);
    }
    BlockData out;
    for (auto _ : state) {
        const BdiCompressed c = bdiCompress(block.data());
        benchmark::DoNotOptimize(bdiDecompress(c, out.data()));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_DoppFetchHit(benchmark::State &state)
{
    MainMemory mem;
    DoppConfig cfg;
    DoppelgangerCache cache(mem, cfg, nullptr);
    Rng rng(7);
    // Warm 1024 blocks.
    BlockData buf;
    for (u64 i = 0; i < 1024; ++i)
        cache.fetch(i * blockBytes, buf.data());
    u64 i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.fetch((i++ % 1024) * blockBytes, buf.data()));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_DoppFetchMissInsert(benchmark::State &state)
{
    MainMemory mem;
    DoppConfig cfg;
    DoppelgangerCache cache(mem, cfg, nullptr);
    Rng rng(7);
    BlockData buf;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.fetch(a, buf.data()));
        a += blockBytes;
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_ConventionalFetchHit(benchmark::State &state)
{
    MainMemory mem;
    ConventionalLlc cache(mem, 2 * 1024 * 1024, 16, 6, nullptr);
    BlockData buf;
    for (u64 i = 0; i < 1024; ++i)
        cache.fetch(i * blockBytes, buf.data());
    u64 i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.fetch((i++ % 1024) * blockBytes, buf.data()));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

void
BM_HierarchyAccess(benchmark::State &state)
{
    MainMemory mem;
    ApproxRegistry reg;
    ConventionalLlc llc(mem, 2 * 1024 * 1024, 16, 6, &reg);
    HierarchyConfig hc;
    MemorySystem sys(hc, llc, mem);
    Rng rng(3);
    u32 value = 0;
    u64 i = 0;
    for (auto _ : state) {
        const Addr a = (i * 4) % (1 << 20);
        benchmark::DoNotOptimize(
            sys.access(static_cast<CoreId>(i % 4), a, false, 4, &value));
        ++i;
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}

BENCHMARK(BM_MapGeneration)
    ->Arg(static_cast<int>(ElemType::U8))
    ->Arg(static_cast<int>(ElemType::I32))
    ->Arg(static_cast<int>(ElemType::F32))
    ->Arg(static_cast<int>(ElemType::F64));
BENCHMARK(BM_MapGenerationGeneric)
    ->Arg(static_cast<int>(ElemType::U8))
    ->Arg(static_cast<int>(ElemType::I32))
    ->Arg(static_cast<int>(ElemType::F32))
    ->Arg(static_cast<int>(ElemType::F64));
BENCHMARK(BM_BdiCompress);
BENCHMARK(BM_BdiRoundTrip);
BENCHMARK(BM_DoppFetchHit);
BENCHMARK(BM_DoppFetchMissInsert);
BENCHMARK(BM_ConventionalFetchHit);
BENCHMARK(BM_HierarchyAccess);

} // namespace

BENCHMARK_MAIN();
