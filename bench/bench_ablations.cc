/**
 * @file
 * Ablations of DESIGN.md §7: design choices the paper fixes (or defers
 * to future work), isolated one at a time on a representative workload
 * subset, all at the base configuration (14-bit map, 1/4 data array):
 *
 *  - map hash function: average+range (paper) vs average-only vs
 *    range-only (Sec 3.7 "other hash functions are possible");
 *  - data-array set indexing: XOR-folded (our default) vs the paper's
 *    raw low map bits;
 *  - data-array replacement: LRU (paper) vs FIFO vs random (Sec 3.5
 *    "replacement variants left for future work").
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

namespace
{

const std::vector<std::string> subset = {"jpeg", "canneal",
                                         "inversek2j", "kmeans"};

struct Variant
{
    std::string label;
    std::function<void(RunConfig &)> apply;
};

void
runSuite(const std::string &title, const std::vector<Variant> &variants)
{
    // Per workload: one baseline run, then one run per variant.
    const size_t stride = 1 + variants.size();
    std::vector<RunConfig> configs;
    for (const auto &name : subset) {
        RunConfig base = defaultConfig(name);
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (const auto &v : variants) {
            RunConfig cfg = defaultConfig(name);
            cfg.kind = LlcKind::SplitDopp;
            v.apply(cfg);
            configs.push_back(std::move(cfg));
        }
    }
    const std::vector<RunResult> results = runCampaign(configs);

    TextTable table;
    {
        std::vector<std::string> head = {"benchmark"};
        for (const auto &v : variants) {
            head.push_back(v.label + " err");
            head.push_back(v.label + " rt");
        }
        table.header(std::move(head));
    }

    for (size_t w = 0; w < subset.size(); ++w) {
        const RunResult &baseline = results[w * stride];
        std::vector<std::string> row = {subset[w]};
        for (size_t i = 0; i < variants.size(); ++i) {
            const RunResult &r = results[w * stride + 1 + i];
            row.push_back(pct(workloadOutputError(
                subset[w], r.output, baseline.output)));
            row.push_back(strfmt(
                "%.2f", static_cast<double>(r.runtime) /
                            static_cast<double>(baseline.runtime)));
        }
        table.row(std::move(row));
    }
    table.print(title);
}

} // namespace

int
main()
{
    runSuite("Ablation: map hash function",
             {{"avg+range (paper)", [](RunConfig &) {}},
              {"avg-only",
               [](RunConfig &c) { c.hashMode = MapHashMode::AvgOnly; }},
              {"range-only", [](RunConfig &c) {
                   c.hashMode = MapHashMode::RangeOnly;
               }}});

    runSuite("Ablation: data-array set indexing",
             {{"XOR-folded (default)", [](RunConfig &) {}},
              {"raw low bits (paper Fig 4)", [](RunConfig &c) {
                   c.hashDataSetIndex = false;
               }}});

    runSuite("Ablation: data-array replacement policy",
             {{"LRU (paper)", [](RunConfig &) {}},
              {"FIFO",
               [](RunConfig &c) { c.dataPolicy = ReplPolicy::FIFO; }},
              {"random", [](RunConfig &c) {
                   c.dataPolicy = ReplPolicy::RANDOM;
               }}});

    runSuite("Ablation: map space at the extremes",
             {{"M=14 (paper)", [](RunConfig &) {}},
              {"M=10", [](RunConfig &c) { c.mapBits = 10; }},
              {"M=16", [](RunConfig &c) { c.mapBits = 16; }}});

    runSuite("Ablation: tag-count-aware data replacement (Sec 3.5 "
             "future work), 1/8 data array",
             {{"LRU (paper)",
               [](RunConfig &c) { c.dataFraction = 0.125; }},
              {"fewest-tags-first", [](RunConfig &c) {
                   c.dataFraction = 0.125;
                   c.tagCountAwareData = true;
               }}});

    runSuite("Lossless organizations (error must be zero)",
             {{"BdI LLC", [](RunConfig &c) { c.kind = LlcKind::Bdi; }},
              {"dedup LLC", [](RunConfig &c) {
                   c.kind = LlcKind::Dedup;
               }}});

    // Sec 5.2 future work: per-use ranges for swaptions' rates.
    {
        std::vector<RunConfig> configs;
        RunConfig base = defaultConfig("swaptions");
        base.kind = LlcKind::Baseline;
        configs.push_back(std::move(base));
        for (const bool perUse : {false, true}) {
            RunConfig cfg = defaultConfig("swaptions");
            cfg.kind = LlcKind::SplitDopp;
            cfg.workload.perUseRanges = perUse;
            configs.push_back(std::move(cfg));
        }
        const std::vector<RunResult> results =
            runCampaign(configs);
        const RunResult &baseline = results[0];

        TextTable table;
        table.header({"swaptions annotation", "error", "runtime"});
        for (size_t i = 0; i < 2; ++i) {
            const RunResult &r = results[1 + i];
            table.row({i ? "per-use ranges (future work)"
                         : "one range per type (paper)",
                       pct(workloadOutputError("swaptions", r.output,
                                               baseline.output)),
                       strfmt("%.3f",
                              static_cast<double>(r.runtime) /
                                  static_cast<double>(
                                      baseline.runtime))});
        }
        table.print("Ablation: shared vs per-use declared ranges "
                    "(swaptions, Sec 5.2)");
    }
    return 0;
}
