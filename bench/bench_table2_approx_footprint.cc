/**
 * @file
 * Table 2: percentage of LLC blocks that are approximate.
 *
 * Methodology (paper Sec 4.1): run each benchmark on the baseline 2 MB
 * LLC and average, over periodic snapshots of the resident blocks, the
 * fraction annotated approximate.
 */

#include "common.hh"

using namespace dopp;
using namespace dopp::bench;

int
main()
{
    // Paper values for side-by-side comparison (Table 2).
    const std::vector<std::pair<std::string, double>> paper = {
        {"blackscholes", 0.618}, {"canneal", 0.380}, {"ferret", 0.459},
        {"fluidanimate", 0.036}, {"inversek2j", 0.997},
        {"jmeint", 0.947},       {"jpeg", 0.984},    {"kmeans", 0.596},
        {"swaptions", 0.015},
    };

    std::vector<SnapshotAverager> avg(paper.size());
    std::vector<RunConfig> configs;
    for (size_t w = 0; w < paper.size(); ++w) {
        RunConfig cfg = defaultConfig(paper[w].first);
        cfg.kind = LlcKind::Baseline;
        cfg.snapshotPeriod = snapshotPeriod();
        auto *a = &avg[w];
        cfg.onSnapshot = [a](const Snapshot &snap) {
            a->sample(approxFraction(snap));
        };
        configs.push_back(std::move(cfg));
    }
    runCampaign(configs);

    TextTable table;
    table.header({"benchmark", "approx LLC blocks (measured)",
                  "paper (Table 2)"});
    for (size_t w = 0; w < paper.size(); ++w)
        table.row({paper[w].first, pct(avg[w].mean()),
                   pct(paper[w].second)});

    table.print("Table 2: approximate fraction of LLC blocks");
    return 0;
}
